//! The residual graph `G_i` (§2.3) as a mutable alive-mask over the base
//! graph.
//!
//! After each adaptive round the nodes activated so far are removed;
//! `G_{i+1}` is the subgraph induced by the survivors. Rather than rebuilding
//! CSR arrays every round, [`ResidualState`] keeps:
//!
//! * `alive: Vec<bool>` — consulted by reverse BFS to skip dead nodes;
//! * a dense `alive_nodes` permutation with back-pointers — O(1) kill and
//!   O(k) uniform sampling of k *distinct* roots (partial Fisher–Yates),
//!   exactly what mRR-set generation needs.
//!
//! For parallel sketch generation, [`ResidualSnapshot`] exposes the same
//! state as an immutable view that many worker threads can share, and
//! [`DistinctDraw`] provides an *index-based* k-distinct draw (Floyd's
//! algorithm over positions in the dense list) that never permutes the
//! underlying state.

use rand::Rng;
use smin_graph::cast::u32_of;
use smin_graph::{GenStamp, NodeId};

/// Alive/dead bookkeeping for the residual graph.
#[derive(Clone, Debug)]
pub struct ResidualState {
    alive: Vec<bool>,
    /// Dense list of alive nodes (order unspecified).
    alive_nodes: Vec<NodeId>,
    /// `pos[u]` = index of `u` in `alive_nodes` (valid only while alive).
    pos: Vec<u32>,
}

impl ResidualState {
    /// All `n` nodes alive.
    pub fn new(n: usize) -> Self {
        ResidualState {
            alive: vec![true; n],
            alive_nodes: (0..n as NodeId).collect(),
            pos: (0..u32_of(n)).collect(),
        }
    }

    /// Revives every node, returning to the all-alive state of
    /// [`ResidualState::new`] without reallocating. Long-running services
    /// keep one `ResidualState` per cached graph and reset it between
    /// requests instead of rebuilding the three `n`-sized buffers.
    pub fn reset(&mut self) {
        self.alive.fill(true);
        self.alive_nodes.clear();
        self.alive_nodes.extend(0..self.pos.len() as NodeId);
        for (u, p) in self.pos.iter_mut().enumerate() {
            *p = u32_of(u);
        }
    }

    /// Number of alive nodes `n_i`.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.alive_nodes.len()
    }

    /// Whether `u` is still alive (inactive).
    #[inline]
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u as usize]
    }

    /// Read-only alive mask (for BFS loops).
    #[inline]
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// The alive nodes in unspecified order.
    #[inline]
    pub fn alive_nodes(&self) -> &[NodeId] {
        &self.alive_nodes
    }

    /// An immutable view of the current residual graph, shareable across
    /// threads. Valid until the next `kill`/`sample_k_distinct` (the borrow
    /// checker enforces this).
    #[inline]
    pub fn snapshot(&self) -> ResidualSnapshot<'_> {
        ResidualSnapshot {
            alive: &self.alive,
            alive_nodes: &self.alive_nodes,
        }
    }

    /// Removes `u` (just activated). No-op if already dead.
    pub fn kill(&mut self, u: NodeId) {
        if !self.alive[u as usize] {
            return;
        }
        self.alive[u as usize] = false;
        let i = self.pos[u as usize] as usize;
        let last = *self
            .alive_nodes
            .last()
            .expect("alive list cannot be empty here");
        self.alive_nodes.swap_remove(i);
        if last != u {
            self.pos[last as usize] = u32_of(i);
        }
    }

    /// Removes every node in `nodes`.
    pub fn kill_all(&mut self, nodes: &[NodeId]) {
        for &u in nodes {
            self.kill(u);
        }
    }

    /// Samples one alive node uniformly. Panics if none are alive.
    pub fn sample_alive(&self, rng: &mut impl Rng) -> NodeId {
        self.alive_nodes[rng.random_range(0..self.alive_nodes.len())]
    }

    /// Samples `k` *distinct* alive nodes uniformly into `out` via partial
    /// Fisher–Yates on the dense list (the internal order is permuted, which
    /// is harmless). Panics if `k > n_alive`.
    pub fn sample_k_distinct(&mut self, k: usize, rng: &mut impl Rng, out: &mut Vec<NodeId>) {
        assert!(
            k <= self.alive_nodes.len(),
            "cannot sample {k} distinct nodes from {} alive",
            self.alive_nodes.len()
        );
        out.clear();
        for i in 0..k {
            let j = rng.random_range(i..self.alive_nodes.len());
            self.alive_nodes.swap(i, j);
            let (a, b) = (self.alive_nodes[i], self.alive_nodes[j]);
            self.pos[a as usize] = u32_of(i);
            self.pos[b as usize] = u32_of(j);
            out.push(a);
        }
    }
}

/// A read-only snapshot of the residual graph: the alive mask plus the dense
/// alive list. `Copy` and `Sync`, so sketch-generation workers can share one
/// snapshot without locking — root sampling goes through [`DistinctDraw`],
/// which draws *positions* instead of permuting the list the way
/// [`ResidualState::sample_k_distinct`] does.
#[derive(Clone, Copy, Debug)]
pub struct ResidualSnapshot<'a> {
    alive: &'a [bool],
    alive_nodes: &'a [NodeId],
}

impl<'a> ResidualSnapshot<'a> {
    /// Builds a snapshot from raw parts (tests; production code uses
    /// [`ResidualState::snapshot`]).
    pub fn from_parts(alive: &'a [bool], alive_nodes: &'a [NodeId]) -> Self {
        ResidualSnapshot { alive, alive_nodes }
    }

    /// Number of alive nodes `n_i`.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.alive_nodes.len()
    }

    /// Read-only alive mask (for BFS loops).
    #[inline]
    pub fn alive_mask(&self) -> &'a [bool] {
        self.alive
    }

    /// The alive nodes in unspecified order.
    #[inline]
    pub fn alive_nodes(&self) -> &'a [NodeId] {
        self.alive_nodes
    }

    /// Whether `u` is alive in this snapshot.
    #[inline]
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u as usize]
    }
}

/// Reusable scratch for uniform k-distinct draws from a [`ResidualSnapshot`].
///
/// Implements Floyd's algorithm over *positions* `0..n_alive`: each call
/// consumes exactly `k` range draws from the RNG and touches `O(k)` memory,
/// with a generation-stamped membership buffer ([`GenStamp`]) so repeated
/// calls stay allocation-free. Unlike the partial Fisher–Yates in
/// [`ResidualState::sample_k_distinct`] it never mutates the alive list,
/// which is what lets one snapshot serve many threads.
#[derive(Clone, Debug, Default)]
pub struct DistinctDraw {
    /// Marks positions already taken in the current draw.
    taken: GenStamp,
}

impl DistinctDraw {
    /// Fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        DistinctDraw::default()
    }

    /// Samples `k` distinct alive nodes uniformly into `out` (cleared
    /// first), in draw order. Panics if `k > n_alive`.
    pub fn sample_from(
        &mut self,
        snap: &ResidualSnapshot<'_>,
        k: usize,
        rng: &mut impl Rng,
        out: &mut Vec<NodeId>,
    ) {
        let n = snap.n_alive();
        assert!(k <= n, "cannot sample {k} distinct nodes from {n} alive");
        out.clear();
        self.taken.begin(n);
        let alive = snap.alive_nodes();
        // Floyd's F2: positions (n-k)..n, remapping collisions to j itself.
        for j in (n - k)..n {
            let t = rng.random_range(0..=j);
            let pick = if self.taken.is_marked(t) { j } else { t };
            self.taken.mark(pick);
            out.push(alive[pick]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn kill_updates_counts_and_mask() {
        let mut r = ResidualState::new(5);
        assert_eq!(r.n_alive(), 5);
        r.kill(2);
        assert_eq!(r.n_alive(), 4);
        assert!(!r.is_alive(2));
        assert!(r.is_alive(0));
        r.kill(2); // idempotent
        assert_eq!(r.n_alive(), 4);
    }

    #[test]
    fn kill_all_and_list_consistency() {
        let mut r = ResidualState::new(6);
        r.kill_all(&[0, 5, 3]);
        assert_eq!(r.n_alive(), 3);
        let mut alive: Vec<_> = r.alive_nodes().to_vec();
        alive.sort_unstable();
        assert_eq!(alive, vec![1, 2, 4]);
        for &u in r.alive_nodes() {
            assert!(r.is_alive(u));
        }
    }

    #[test]
    fn reset_revives_everything() {
        let mut r = ResidualState::new(6);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        r.sample_k_distinct(3, &mut rng, &mut out); // permutes the dense list
        r.kill_all(&[0, 2, 5]);
        r.reset();
        assert_eq!(r.n_alive(), 6);
        let fresh = ResidualState::new(6);
        assert_eq!(r.alive_mask(), fresh.alive_mask());
        assert_eq!(r.alive_nodes(), fresh.alive_nodes());
        // kills after reset keep the list/pos invariants
        r.kill_all(&[1, 4]);
        assert_eq!(r.n_alive(), 4);
        for &u in r.alive_nodes() {
            assert!(r.is_alive(u));
        }
        r.sample_k_distinct(4, &mut rng, &mut out);
        assert!(out.iter().all(|&u| r.is_alive(u)));
    }

    #[test]
    fn sample_k_distinct_properties() {
        let mut r = ResidualState::new(10);
        r.kill_all(&[0, 1, 2]);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut out = Vec::new();
        for _ in 0..200 {
            r.sample_k_distinct(4, &mut rng, &mut out);
            assert_eq!(out.len(), 4);
            let mut s = out.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "samples must be distinct");
            assert!(out.iter().all(|&u| r.is_alive(u)));
        }
    }

    #[test]
    fn sample_k_distinct_is_uniform() {
        let mut r = ResidualState::new(5);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut out = Vec::new();
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            r.sample_k_distinct(2, &mut rng, &mut out);
            for &u in &out {
                counts[u as usize] += 1;
            }
        }
        // each node appears with probability 2/5
        for (u, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!((rate - 0.4).abs() < 0.02, "node {u}: rate = {rate}");
        }
    }

    #[test]
    fn kill_after_sampling_stays_consistent() {
        let mut r = ResidualState::new(8);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        r.sample_k_distinct(3, &mut rng, &mut out);
        let victim = out[0];
        r.kill(victim);
        assert!(!r.is_alive(victim));
        assert_eq!(r.n_alive(), 7);
        // the dense list no longer contains the victim
        assert!(!r.alive_nodes().contains(&victim));
        // and sampling still returns alive nodes only
        for _ in 0..50 {
            r.sample_k_distinct(5, &mut rng, &mut out);
            assert!(out.iter().all(|&u| r.is_alive(u)));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut r = ResidualState::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        r.sample_k_distinct(4, &mut rng, &mut out);
    }

    #[test]
    fn snapshot_views_current_state() {
        let mut r = ResidualState::new(6);
        r.kill_all(&[1, 4]);
        let snap = r.snapshot();
        assert_eq!(snap.n_alive(), 4);
        assert!(!snap.is_alive(1));
        assert!(snap.is_alive(0));
        assert_eq!(snap.alive_mask(), r.alive_mask());
        assert_eq!(snap.alive_nodes(), r.alive_nodes());
    }

    #[test]
    fn distinct_draw_is_distinct_alive_and_immutable() {
        let mut r = ResidualState::new(10);
        r.kill_all(&[0, 1, 2]);
        let before: Vec<NodeId> = r.alive_nodes().to_vec();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut draw = DistinctDraw::new();
        let mut out = Vec::new();
        for _ in 0..300 {
            let snap = r.snapshot();
            draw.sample_from(&snap, 4, &mut rng, &mut out);
            assert_eq!(out.len(), 4);
            let mut s = out.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "samples must be distinct");
            assert!(out.iter().all(|&u| r.is_alive(u)));
        }
        assert_eq!(r.alive_nodes(), before, "the draw must not permute state");
    }

    #[test]
    fn distinct_draw_is_uniform() {
        let r = ResidualState::new(5);
        let mut rng = SmallRng::seed_from_u64(22);
        let mut draw = DistinctDraw::new();
        let mut out = Vec::new();
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            draw.sample_from(&r.snapshot(), 2, &mut rng, &mut out);
            for &u in &out {
                counts[u as usize] += 1;
            }
        }
        // each node appears with probability 2/5
        for (u, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!((rate - 0.4).abs() < 0.02, "node {u}: rate = {rate}");
        }
    }

    #[test]
    fn distinct_draw_full_population() {
        let r = ResidualState::new(7);
        let mut rng = SmallRng::seed_from_u64(23);
        let mut draw = DistinctDraw::new();
        let mut out = Vec::new();
        draw.sample_from(&r.snapshot(), 7, &mut rng, &mut out);
        let mut s = out.clone();
        s.sort_unstable();
        assert_eq!(s, (0..7).collect::<Vec<NodeId>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn distinct_draw_oversample_panics() {
        let r = ResidualState::new(3);
        let mut rng = SmallRng::seed_from_u64(24);
        let mut draw = DistinctDraw::new();
        let mut out = Vec::new();
        draw.sample_from(&r.snapshot(), 4, &mut rng, &mut out);
    }

    #[test]
    fn distinct_draw_deterministic_per_seed() {
        let r = ResidualState::new(50);
        let mut draw_a = DistinctDraw::new();
        let mut draw_b = DistinctDraw::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for seed in 0..20u64 {
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let mut rng_b = SmallRng::seed_from_u64(seed);
            draw_a.sample_from(&r.snapshot(), 10, &mut rng_a, &mut a);
            draw_b.sample_from(&r.snapshot(), 10, &mut rng_b, &mut b);
            assert_eq!(a, b, "seed {seed}: draw must depend only on the RNG");
        }
    }
}
