//! Diffusion model selector.

use std::fmt;

/// The two propagation models evaluated in the paper (§2.1). Both admit the
/// live-edge characterization that reverse-reachable sampling relies on:
///
/// * **IC** — every edge `⟨u, v⟩` is independently live with `p(u, v)`;
/// * **LT** — every node keeps at most one live incoming edge, edge `⟨u, v⟩`
///   being chosen with probability `p(u, v)` (and no edge with
///   `1 − Σ_u p(u, v)`), which requires incoming probabilities to sum to ≤ 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Independent cascade.
    IC,
    /// Linear threshold.
    LT,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::IC => write!(f, "IC"),
            Model::LT => write!(f, "LT"),
        }
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "IC" => Ok(Model::IC),
            "LT" => Ok(Model::LT),
            other => Err(format!(
                "unknown diffusion model '{other}' (expected IC or LT)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        assert_eq!("ic".parse::<Model>().unwrap(), Model::IC);
        assert_eq!("LT".parse::<Model>().unwrap(), Model::LT);
        assert!("pagerank".parse::<Model>().is_err());
        assert_eq!(Model::IC.to_string(), "IC");
    }
}
