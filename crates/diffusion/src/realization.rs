//! Live-edge realizations `ϕ ∈ Ω` (§2.1).
//!
//! A realization fixes every random choice of the diffusion process:
//!
//! * under **IC**, each edge is independently live or blocked;
//! * under **LT**, each node retains at most one live incoming edge.
//!
//! The spread of a seed set under a realization is plain reachability over
//! live edges, which is what [`forward`](crate::forward) computes.

use crate::model::Model;
use rand::Rng;
use smin_graph::cast::u32_of;
use smin_graph::{Graph, NodeId};

/// Sentinel for "node chose no incoming edge" in LT realizations.
const LT_NONE: u32 = u32::MAX;

/// A fully materialized realization of a probabilistic graph.
#[derive(Clone, Debug)]
pub enum Realization {
    /// IC: `live[e]` is the status of forward edge `e`.
    Ic { live: Vec<bool> },
    /// LT: `chosen[v]` is the forward edge index of the single live edge
    /// into `v`, or `u32::MAX` when `v` kept none.
    Lt { chosen: Vec<u32> },
}

impl Realization {
    /// Samples a realization of `g` under `model`.
    ///
    /// For LT, each node `v` picks incoming edge `⟨u, v⟩` with probability
    /// `p(u, v)` and nothing with the remaining mass; the graph must be a
    /// valid LT instance (incoming probabilities summing to ≤ 1), which is
    /// asserted in debug builds.
    pub fn sample(g: &Graph, model: Model, rng: &mut impl Rng) -> Realization {
        match model {
            Model::IC => {
                let mut live = Vec::with_capacity(g.m());
                for (_, _, p) in g.edges() {
                    live.push(rng.random::<f64>() < p);
                }
                Realization::Ic { live }
            }
            Model::LT => {
                let mut chosen = vec![LT_NONE; g.n()];
                for v in 0..u32_of(g.n()) {
                    debug_assert!(
                        g.in_prob_sum(v) <= 1.0 + 1e-9,
                        "node {v} has incoming probability mass > 1; not a valid LT instance"
                    );
                    let mut r = rng.random::<f64>();
                    for (_, p, e) in g.in_edges(v) {
                        if r < p {
                            chosen[v as usize] = e;
                            break;
                        }
                        r -= p;
                    }
                }
                Realization::Lt { chosen }
            }
        }
    }

    /// Model this realization was sampled under.
    pub fn model(&self) -> Model {
        match self {
            Realization::Ic { .. } => Model::IC,
            Realization::Lt { .. } => Model::LT,
        }
    }

    /// Whether forward edge `e` (into node `dst`) is live.
    #[inline]
    pub fn is_live(&self, e: u32, dst: NodeId) -> bool {
        match self {
            Realization::Ic { live } => live[e as usize],
            Realization::Lt { chosen } => chosen[dst as usize] == e,
        }
    }

    /// Builds an IC realization directly from edge statuses (tests,
    /// enumeration).
    pub fn from_ic_statuses(live: Vec<bool>) -> Realization {
        Realization::Ic { live }
    }

    /// Builds an LT realization from per-node chosen forward edge ids
    /// (`None` → no live in-edge).
    pub fn from_lt_choices(chosen: Vec<Option<u32>>) -> Realization {
        Realization::Lt {
            chosen: chosen.into_iter().map(|c| c.unwrap_or(LT_NONE)).collect(),
        }
    }

    /// Number of live edges (diagnostics).
    pub fn live_edge_count(&self) -> usize {
        match self {
            Realization::Ic { live } => live.iter().filter(|&&b| b).count(),
            Realization::Lt { chosen } => chosen.iter().filter(|&&c| c != LT_NONE).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    fn line(p: f64) -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, p).unwrap();
        b.add_edge_p(1, 2, p).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ic_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let all = Realization::sample(&line(1.0), Model::IC, &mut rng);
        assert_eq!(all.live_edge_count(), 2);
        let g_eps = line(1e-12);
        let none = Realization::sample(&g_eps, Model::IC, &mut rng);
        assert_eq!(none.live_edge_count(), 0);
    }

    #[test]
    fn ic_liveness_rate_matches_probability() {
        let g = line(0.3);
        let mut rng = SmallRng::seed_from_u64(2);
        let trials = 20_000;
        let mut live0 = 0usize;
        for _ in 0..trials {
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            if phi.is_live(0, g.edge_dst(0)) {
                live0 += 1;
            }
        }
        let rate = live0 as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn lt_picks_at_most_one_in_edge() {
        // two parents with p = 0.5 each -> exactly one chosen or none... here
        // 0.5 + 0.5 = 1.0 so always exactly one.
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 2, 0.5).unwrap();
        b.add_edge_p(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut chose0 = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let phi = Realization::sample(&g, Model::LT, &mut rng);
            match &phi {
                Realization::Lt { chosen } => {
                    assert_ne!(chosen[2], LT_NONE, "mass sums to 1, must pick one");
                    if chosen[2] == 0 {
                        chose0 += 1;
                    }
                }
                _ => unreachable!(),
            }
        }
        let rate = chose0 as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn lt_leftover_mass_means_none() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.25).unwrap();
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 20_000;
        let mut none = 0usize;
        for _ in 0..trials {
            let phi = Realization::sample(&g, Model::LT, &mut rng);
            if phi.live_edge_count() == 0 {
                none += 1;
            }
        }
        let rate = none as f64 / trials as f64;
        assert!((rate - 0.75).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn lt_is_live_matches_choice() {
        let phi = Realization::from_lt_choices(vec![None, Some(0)]);
        assert!(phi.is_live(0, 1));
        assert!(!phi.is_live(1, 1));
        assert!(!phi.is_live(0, 0));
    }
}
