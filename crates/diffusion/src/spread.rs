//! Monte-Carlo estimation of expected (truncated) spread.
//!
//! Used by the greedy-oracle comparator and by tests; the production
//! algorithms estimate via RR / mRR sets instead (far cheaper per query).

use crate::forward::ForwardSim;
use crate::model::Model;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smin_graph::{Graph, NodeId};

/// Monte-Carlo estimate of `E[I(S)]` over `iters` fresh simulations.
pub fn mc_expected_spread(
    g: &Graph,
    model: Model,
    seeds: &[NodeId],
    iters: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut sim = ForwardSim::new(g.n());
    let mut total = 0usize;
    for _ in 0..iters {
        total += sim.simulate(g, model, seeds, rng);
    }
    total as f64 / iters.max(1) as f64
}

/// Monte-Carlo estimate of the truncated expectation
/// `E[Γ(S)] = E[min{I(S), η}]` (Definition 2.2). Note this is *not*
/// `min{E[I(S)], η}` — truncation happens inside the expectation, which is
/// exactly why vanilla spread estimators mislead ASM (Example 2.3).
pub fn mc_expected_truncated(
    g: &Graph,
    model: Model,
    seeds: &[NodeId],
    eta: usize,
    iters: usize,
    rng: &mut impl Rng,
) -> f64 {
    let mut sim = ForwardSim::new(g.n());
    let mut total = 0usize;
    for _ in 0..iters {
        total += sim.simulate(g, model, seeds, rng).min(eta);
    }
    total as f64 / iters.max(1) as f64
}

/// Multi-threaded `E[I(S)]` estimate: `iters` simulations sharded over
/// `threads` workers, each with an independent RNG stream derived from
/// `seed`. Deterministic for a fixed `(seed, threads)` pair.
pub fn mc_expected_spread_par(
    g: &Graph,
    model: Model,
    seeds: &[NodeId],
    iters: usize,
    threads: usize,
    seed: u64,
) -> f64 {
    let threads = threads.max(1);
    let per = iters / threads;
    let extra = iters % threads;
    let total: usize = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let quota = per + usize::from(t < extra);
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)),
                );
                let mut sim = ForwardSim::new(g.n());
                let mut sum = 0usize;
                for _ in 0..quota {
                    sum += sim.simulate(g, model, seeds, &mut rng);
                }
                sum
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    });
    total as f64 / iters.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    fn fork() -> Graph {
        // 0 -> 1 (p=0.5), 0 -> 2 (p=0.5)
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn expected_spread_of_fork() {
        let g = fork();
        let mut rng = SmallRng::seed_from_u64(13);
        let est = mc_expected_spread(&g, Model::IC, &[0], 40_000, &mut rng);
        assert!((est - 2.0).abs() < 0.03, "E[I] = {est}");
    }

    #[test]
    fn truncation_is_inside_expectation() {
        let g = fork();
        let mut rng = SmallRng::seed_from_u64(14);
        // I({0}) is 1, 2 or 3 with prob 1/4, 1/2, 1/4; min with eta=2 gives
        // E = 0.25*1 + 0.5*2 + 0.25*2 = 1.75 < min(E[I], 2) = 2.
        let est = mc_expected_truncated(&g, Model::IC, &[0], 2, 40_000, &mut rng);
        assert!((est - 1.75).abs() < 0.03, "E[Γ] = {est}");
    }

    #[test]
    fn parallel_matches_serial_mean() {
        let g = fork();
        let par = mc_expected_spread_par(&g, Model::IC, &[0], 40_000, 4, 99);
        assert!((par - 2.0).abs() < 0.03, "par = {par}");
    }

    #[test]
    fn parallel_is_deterministic() {
        let g = fork();
        let a = mc_expected_spread_par(&g, Model::IC, &[0], 10_000, 3, 7);
        let b = mc_expected_spread_par(&g, Model::IC, &[0], 10_000, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let g = fork();
        let mut rng = SmallRng::seed_from_u64(15);
        assert_eq!(mc_expected_spread(&g, Model::IC, &[], 100, &mut rng), 0.0);
    }
}
