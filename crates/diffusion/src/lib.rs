//! # smin-diffusion
//!
//! Influence propagation substrate (§2.1–2.3 of the paper):
//!
//! * [`Model`] — the independent cascade (IC) and linear threshold (LT)
//!   diffusion models;
//! * [`Realization`] — live-edge samples `ϕ ∈ Ω` of a probabilistic graph,
//!   the paper's possible-world semantics;
//! * [`forward`] — spread computation `I_ϕ(S)` on a realization, restricted
//!   marginal spread `I_ϕ(S | S_{i−1})`, and fresh-coin simulation;
//! * [`spread`] — Monte-Carlo estimation of `E[I(S)]` and `E[Γ(S)]`;
//! * [`exact`] — exact expectations by realization enumeration (tiny graphs,
//!   used to validate Theorem 3.3 and Example 2.3);
//! * [`ResidualState`] — the residual graph `G_i` as an O(1)-update alive
//!   mask with uniform k-distinct sampling, shared by the samplers;
//!   [`ResidualSnapshot`] is its immutable, thread-shareable view and
//!   [`DistinctDraw`] the matching non-permuting root draw;
//! * [`oracle`] — the select→observe interface of Algorithm 1, with a
//!   fixed-realization implementation (experiment protocol) and a lazily
//!   sampled one (simulation deployments).

#![forbid(unsafe_code)]

pub mod exact;
pub mod forward;
pub mod log;
pub mod model;
pub mod oracle;
pub mod realization;
pub mod residual;
pub mod spread;

pub use forward::ForwardSim;
pub use log::{LoggingOracle, ObservationLog, ObservationStep, ReplayOracle};
pub use model::Model;
pub use oracle::{InfluenceOracle, RealizationOracle, SimulationOracle};
pub use realization::Realization;
pub use residual::{DistinctDraw, ResidualSnapshot, ResidualState};
