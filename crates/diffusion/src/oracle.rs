//! The select→observe interface of Algorithm 1.
//!
//! ASTI never inspects the hidden realization directly — it submits a batch
//! of seeds and receives the set of newly activated nodes. Two
//! implementations are provided:
//!
//! * [`RealizationOracle`] — a realization is sampled (or injected) up front;
//!   this is the paper's experimental protocol (20 fixed realizations per
//!   dataset, §6);
//! * [`SimulationOracle`] — random choices are drawn lazily the first time
//!   propagation touches them (principle of deferred decisions), equivalent
//!   in distribution but `O(touched)` rather than `O(m)` up front.

use crate::forward::ForwardSim;
use crate::model::Model;
use crate::realization::Realization;
use rand::Rng;
use smin_graph::{Graph, NodeId};

/// Feedback channel between a policy and the (hidden) world.
pub trait InfluenceOracle {
    /// Activates `seeds`, propagates, and returns every *newly* activated
    /// node (the seeds themselves included unless already active).
    fn observe(&mut self, seeds: &[NodeId]) -> Vec<NodeId>;

    /// Activation mask after all observations so far.
    fn active_mask(&self) -> &[bool];

    /// Number of active nodes.
    fn num_active(&self) -> usize;
}

/// Oracle over a pre-sampled (or injected) realization.
pub struct RealizationOracle<'g> {
    g: &'g Graph,
    phi: Realization,
    active: Vec<bool>,
    num_active: usize,
    sim: ForwardSim,
}

impl<'g> RealizationOracle<'g> {
    /// Wraps a fixed realization.
    pub fn new(g: &'g Graph, phi: Realization) -> Self {
        RealizationOracle {
            g,
            phi,
            active: vec![false; g.n()],
            num_active: 0,
            sim: ForwardSim::new(g.n()),
        }
    }

    /// Samples a fresh realization under `model`.
    pub fn sampled(g: &'g Graph, model: Model, rng: &mut impl Rng) -> Self {
        Self::new(g, Realization::sample(g, model, rng))
    }

    /// The underlying realization (e.g. to re-evaluate a non-adaptive seed
    /// set on the same world).
    pub fn realization(&self) -> &Realization {
        &self.phi
    }

    /// Resets all activations, keeping the realization.
    pub fn reset(&mut self) {
        self.active.iter_mut().for_each(|b| *b = false);
        self.num_active = 0;
    }
}

impl InfluenceOracle for RealizationOracle<'_> {
    fn observe(&mut self, seeds: &[NodeId]) -> Vec<NodeId> {
        let newly = self
            .sim
            .reachable_restricted(self.g, &self.phi, seeds, &self.active);
        for &u in &newly {
            self.active[u as usize] = true;
        }
        self.num_active += newly.len();
        newly
    }

    fn active_mask(&self) -> &[bool] {
        &self.active
    }

    fn num_active(&self) -> usize {
        self.num_active
    }
}

/// Oracle that draws the world lazily (deferred decisions).
pub struct SimulationOracle<'g, R: Rng> {
    g: &'g Graph,
    model: Model,
    rng: R,
    /// IC: per-edge status, 0 = undrawn, 1 = live, 2 = blocked.
    edge_state: Vec<u8>,
    /// LT: per-node chosen in-edge, `UNDRAWN`/`NONE` sentinels as below.
    chosen: Vec<u32>,
    active: Vec<bool>,
    num_active: usize,
    queue: Vec<NodeId>,
}

const UNDRAWN: u32 = u32::MAX - 1;
const NONE: u32 = u32::MAX;

impl<'g, R: Rng> SimulationOracle<'g, R> {
    /// New lazily-sampled world.
    pub fn new(g: &'g Graph, model: Model, rng: R) -> Self {
        SimulationOracle {
            g,
            model,
            rng,
            edge_state: if model == Model::IC {
                vec![0u8; g.m()]
            } else {
                Vec::new()
            },
            chosen: if model == Model::LT {
                vec![UNDRAWN; g.n()]
            } else {
                Vec::new()
            },
            active: vec![false; g.n()],
            num_active: 0,
            queue: Vec::new(),
        }
    }

    fn edge_live(&mut self, e: u32, dst: NodeId, p: f64) -> bool {
        match self.model {
            Model::IC => {
                let s = &mut self.edge_state[e as usize];
                if *s == 0 {
                    *s = if self.rng.random::<f64>() < p { 1 } else { 2 };
                }
                *s == 1
            }
            Model::LT => {
                if self.chosen[dst as usize] == UNDRAWN {
                    let mut r = self.rng.random::<f64>();
                    self.chosen[dst as usize] = NONE;
                    for (_, q, ein) in self.g.in_edges(dst) {
                        if r < q {
                            self.chosen[dst as usize] = ein;
                            break;
                        }
                        r -= q;
                    }
                }
                self.chosen[dst as usize] == e
            }
        }
    }
}

impl<R: Rng> InfluenceOracle for SimulationOracle<'_, R> {
    fn observe(&mut self, seeds: &[NodeId]) -> Vec<NodeId> {
        self.queue.clear();
        let mut newly = Vec::new();
        for &s in seeds {
            if !self.active[s as usize] {
                self.active[s as usize] = true;
                newly.push(s);
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            // Collect the frontier first: `edge_live` needs `&mut self`.
            let out: Vec<(u32, NodeId, f64)> = self.g.out_edges_indexed(u).collect();
            for (e, v, p) in out {
                if !self.active[v as usize] && self.edge_live(e, v, p) {
                    self.active[v as usize] = true;
                    newly.push(v);
                    self.queue.push(v);
                }
            }
        }
        self.num_active += newly.len();
        newly
    }

    fn active_mask(&self) -> &[bool] {
        &self.active
    }

    fn num_active(&self) -> usize {
        self.num_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 1.0).unwrap();
        b.add_edge_p(1, 2, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn realization_oracle_observes_incrementally() {
        let g = path3();
        let phi = Realization::from_ic_statuses(vec![true, false]);
        let mut o = RealizationOracle::new(&g, phi);
        let mut first = o.observe(&[0]);
        first.sort_unstable();
        assert_eq!(first, vec![0, 1]);
        assert_eq!(o.num_active(), 2);
        // re-observing an active node yields nothing
        assert!(o.observe(&[1]).is_empty());
        let second = o.observe(&[2]);
        assert_eq!(second, vec![2]);
        assert_eq!(o.num_active(), 3);
    }

    #[test]
    fn reset_clears_activations() {
        let g = path3();
        let phi = Realization::from_ic_statuses(vec![true, true]);
        let mut o = RealizationOracle::new(&g, phi);
        o.observe(&[0]);
        assert_eq!(o.num_active(), 3);
        o.reset();
        assert_eq!(o.num_active(), 0);
        assert!(o.active_mask().iter().all(|&b| !b));
    }

    #[test]
    fn simulation_oracle_consistent_coins() {
        // p = 1 edges: the lazy oracle must activate the whole path.
        let g = path3();
        let mut o = SimulationOracle::new(&g, Model::IC, SmallRng::seed_from_u64(3));
        let newly = o.observe(&[0]);
        assert_eq!(newly.len(), 3);
        assert_eq!(o.num_active(), 3);
    }

    #[test]
    fn simulation_oracle_draws_each_edge_once() {
        // One edge with p = 0.5: observing each endpoint repeatedly must
        // never flip the coin twice (the status is remembered).
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        for seed in 0..200u64 {
            let mut o = SimulationOracle::new(&g, Model::IC, SmallRng::seed_from_u64(seed));
            let first = o.observe(&[0]).len();
            // after the first observation, the world is fixed
            let total = o.num_active();
            assert_eq!(total, first);
            assert!(o.observe(&[0]).is_empty());
        }
    }

    #[test]
    fn simulation_oracle_lt_mean_matches() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.25).unwrap();
        let g = b.build().unwrap();
        let mut hits = 0usize;
        let trials = 20_000;
        for seed in 0..trials {
            let mut o = SimulationOracle::new(&g, Model::LT, SmallRng::seed_from_u64(seed as u64));
            hits += o.observe(&[0]).len() - 1;
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn oracles_agree_on_deterministic_graphs() {
        let g = path3();
        let phi = Realization::from_ic_statuses(vec![true, true]);
        let mut a = RealizationOracle::new(&g, phi);
        let mut b = SimulationOracle::new(&g, Model::IC, SmallRng::seed_from_u64(1));
        assert_eq!(a.observe(&[2]), b.observe(&[2]));
        assert_eq!(a.observe(&[0]).len(), b.observe(&[0]).len());
    }
}
