//! Std-only observability primitives for the seedmin service stack.
//!
//! Three metric kinds, all lock-free over `AtomicU64`:
//!
//! * [`Counter`] — monotonically non-decreasing event count.
//! * [`Gauge`] — a sampled instantaneous value (queue depth, occupancy).
//! * [`Histogram`] — log-bucketed distribution with **fixed power-of-two
//!   bucket bounds** (`1, 2, 4, …, 2^29` microseconds, then `+Inf`). The
//!   bounds never depend on the data, so the exposition text is a pure
//!   function of the observed samples: two scrapes with no intervening
//!   traffic are byte-identical, and merging per-thread histograms is
//!   associative (element-wise addition).
//!
//! Timing is captured with [`Span`] (accumulates elapsed microseconds into
//! a caller-owned `u64` slot — no allocation, no shared state on the hot
//! path) or [`Histogram::start_span`] (observes straight into a histogram).
//! Wall-clock reads live *here*, behind these two types, so instrumented
//! crates carry no `Instant::now` of their own: the lint workspace grants
//! the timing exemption to this crate once instead of to every call site.
//! Durations are observability output only — they go to `/metrics`, trace
//! logs, and `X-*-Micros` response headers, never into a response body, so
//! the stack's determinism contract is untouched.
//!
//! [`expo`] renders metrics in the Prometheus text exposition format
//! (version 0.0.4): `# HELP` / `# TYPE` headers followed by samples, with
//! histograms expanded into cumulative `_bucket{le="…"}` series plus
//! `_sum` / `_count`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of finite histogram bucket bounds (`2^0 … 2^29`).
pub const FINITE_BUCKETS: usize = 30;

/// Total bucket slots: the finite bounds plus the `+Inf` overflow bucket.
pub const BUCKET_SLOTS: usize = FINITE_BUCKETS + 1;

/// A monotonically non-decreasing event counter.
///
/// All operations are `Relaxed`: a counter is a metric, not a lock, and
/// each cell is individually monotonic under any ordering.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sampled instantaneous value (last write wins).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Records the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Most recently recorded value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index for `value`: the smallest `i` with `value <= 2^i`, clamped
/// to the `+Inf` slot ([`FINITE_BUCKETS`]) past the last finite bound.
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // Smallest power-of-two exponent covering `value`: bit length of
    // `value - 1`. Fits in usize trivially (<= 64).
    let bits = 64 - (value - 1).leading_zeros();
    usize::try_from(bits)
        .unwrap_or(FINITE_BUCKETS)
        .min(FINITE_BUCKETS)
}

/// Upper bound of bucket `index`, or `None` for the `+Inf` slot.
pub fn bucket_bound(index: usize) -> Option<u64> {
    (index < FINITE_BUCKETS).then(|| 1u64 << index)
}

/// Log-bucketed histogram over fixed power-of-two bounds.
///
/// Buckets store **per-bucket** (non-cumulative) counts; [`expo`] renders
/// the cumulative `le` form. Element-wise addition of snapshots is the
/// merge operation, which is associative and commutative by construction.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_SLOTS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed; see [`Counter`]).
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Times a region and observes its duration in microseconds on drop.
    pub fn start_span(&self) -> HistSpan<'_> {
        HistSpan {
            hist: self,
            started: Instant::now(),
        }
    }

    /// A point-in-time copy. Concurrent observers may land between field
    /// loads, so `count` can momentarily disagree with the bucket total —
    /// fine for metrics, which is all this is.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a [`Histogram`]; the mergeable form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts.
    pub buckets: [u64; BUCKET_SLOTS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKET_SLOTS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise sum of two snapshots (associative, commutative).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }
}

/// Accumulates elapsed wall time, in microseconds, into a caller-owned
/// slot when dropped. The slot is a plain `u64` — per-request stage
/// accumulators stay on the stack (or in per-session scratch) and only
/// touch shared atomics once, when the owner folds them into a
/// [`Histogram`].
pub struct Span<'a> {
    slot: &'a mut u64,
    started: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing into `slot`.
    pub fn enter(slot: &'a mut u64) -> Span<'a> {
        Span {
            slot,
            started: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        *self.slot = self.slot.saturating_add(elapsed_micros(self.started));
    }
}

/// Observes the elapsed time of a region into a [`Histogram`] on drop.
pub struct HistSpan<'a> {
    hist: &'a Histogram,
    started: Instant,
}

impl Drop for HistSpan<'_> {
    fn drop(&mut self) {
        self.hist.observe(elapsed_micros(self.started));
    }
}

/// Microseconds since `started`, saturating at `u64::MAX`.
pub fn elapsed_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

pub mod expo {
    //! Prometheus text exposition (format version 0.0.4).
    //!
    //! Every writer appends `# HELP` / `# TYPE` lines followed by samples.
    //! `*_vec` variants take pre-rendered label bodies (e.g.
    //! `route="select"`); callers are responsible for passing them in a
    //! fixed order so the output is byte-stable across scrapes.

    use super::{bucket_bound, HistogramSnapshot, BUCKET_SLOTS};
    use std::fmt::Write;

    /// The HTTP `Content-Type` for this exposition format.
    pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

    fn header(out: &mut String, name: &str, help: &str, kind: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }

    /// One unlabeled counter.
    pub fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
        header(out, name, help, "counter");
        let _ = writeln!(out, "{name} {value}");
    }

    /// A counter family with one sample per label body.
    pub fn write_counter_vec(out: &mut String, name: &str, help: &str, samples: &[(&str, u64)]) {
        header(out, name, help, "counter");
        for (labels, value) in samples {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    }

    /// One unlabeled gauge.
    pub fn write_gauge(out: &mut String, name: &str, help: &str, value: u64) {
        header(out, name, help, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }

    /// A gauge family with one sample per label body.
    pub fn write_gauge_vec(out: &mut String, name: &str, help: &str, samples: &[(&str, u64)]) {
        header(out, name, help, "gauge");
        for (labels, value) in samples {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    }

    /// One unlabeled histogram: cumulative `_bucket{le=…}` series, then
    /// `_sum` and `_count`.
    pub fn write_histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
        header(out, name, help, "histogram");
        series(out, name, "", snap);
    }

    /// A histogram family with one series per label body.
    pub fn write_histogram_vec(
        out: &mut String,
        name: &str,
        help: &str,
        samples: &[(&str, HistogramSnapshot)],
    ) {
        header(out, name, help, "histogram");
        for (labels, snap) in samples {
            series(out, name, labels, snap);
        }
    }

    fn series(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, count) in snap.buckets.iter().enumerate().take(BUCKET_SLOTS) {
            cumulative += count;
            match bucket_bound(i) {
                Some(bound) => {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
                    );
                }
            }
        }
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", snap.sum);
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_fixed_powers_of_two() {
        // The bound of bucket i is 2^i; value v lands in the smallest
        // bucket whose bound covers it.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 29), 29);
        assert_eq!(bucket_index((1 << 29) + 1), FINITE_BUCKETS); // +Inf
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
        for i in 0..FINITE_BUCKETS {
            let bound = bucket_bound(i).unwrap();
            assert_eq!(bucket_index(bound), i, "bound {bound} is inclusive");
            assert_eq!(bucket_index(bound + 1), (i + 1).min(FINITE_BUCKETS));
        }
        assert_eq!(bucket_bound(FINITE_BUCKETS), None);
    }

    #[test]
    fn histogram_observes_into_fixed_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1 << 29, (1 << 29) + 1] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 2 + 3 + (1u64 << 29) + (1u64 << 29) + 1);
        assert_eq!(s.buckets[0], 1); // 1
        assert_eq!(s.buckets[1], 1); // 2
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[29], 1); // 2^29
        assert_eq!(s.buckets[FINITE_BUCKETS], 1); // +Inf
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let snap = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.observe(v);
            }
            h.snapshot()
        };
        let a = snap(&[1, 7, 900]);
        let b = snap(&[2, 2, 1 << 20]);
        let c = snap(&[5_000_000, 3]);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b), b.merge(&a));
        let merged = a.merge(&b).merge(&c);
        assert_eq!(merged.count, 8);
        assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
    }

    #[test]
    fn counter_is_monotonic_under_concurrent_increments() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
            // Reader thread: every sample must be >= the previous one.
            scope.spawn(|| {
                let mut last = 0;
                for _ in 0..1_000 {
                    let now = c.get();
                    assert!(now >= last, "counter went backwards: {last} -> {now}");
                    last = now;
                }
            });
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(42);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn span_accumulates_into_its_slot() {
        let mut slot = 0u64;
        {
            let _span = Span::enter(&mut slot);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(slot >= 1_000, "2ms sleep recorded {slot}us");
        let first = slot;
        {
            let _span = Span::enter(&mut slot);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(slot > first, "second span must accumulate, not overwrite");
    }

    #[test]
    fn hist_span_observes_elapsed_time() {
        let h = Histogram::new();
        {
            let _span = h.start_span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 500, "1ms sleep recorded {}us", s.sum);
    }

    #[test]
    fn exposition_is_deterministic_and_cumulative() {
        let h = Histogram::new();
        for v in [1u64, 2, 2, 5] {
            h.observe(v);
        }
        let mut out = String::new();
        expo::write_histogram(&mut out, "t_micros", "test histogram", &h.snapshot());
        assert!(out.starts_with("# HELP t_micros test histogram\n# TYPE t_micros histogram\n"));
        assert!(out.contains("t_micros_bucket{le=\"1\"} 1\n"));
        assert!(out.contains("t_micros_bucket{le=\"2\"} 3\n"));
        assert!(out.contains("t_micros_bucket{le=\"4\"} 3\n"));
        assert!(out.contains("t_micros_bucket{le=\"8\"} 4\n"));
        assert!(out.contains("t_micros_bucket{le=\"+Inf\"} 4\n"));
        assert!(out.ends_with("t_micros_sum 10\nt_micros_count 4\n"));
        // Same samples, same bytes: render twice and compare.
        let mut again = String::new();
        expo::write_histogram(&mut again, "t_micros", "test histogram", &h.snapshot());
        assert_eq!(out, again);
    }

    #[test]
    fn labeled_families_render_one_series_per_label() {
        let mut out = String::new();
        expo::write_counter_vec(
            &mut out,
            "req_total",
            "requests",
            &[("route=\"a\"", 3), ("route=\"b\"", 5)],
        );
        assert_eq!(
            out,
            "# HELP req_total requests\n# TYPE req_total counter\n\
             req_total{route=\"a\"} 3\nreq_total{route=\"b\"} 5\n"
        );
        let h = Histogram::new();
        h.observe(1);
        let mut hv = String::new();
        expo::write_histogram_vec(
            &mut hv,
            "stage_micros",
            "stage timings",
            &[("stage=\"sketch\"", h.snapshot())],
        );
        assert!(hv.contains("stage_micros_bucket{stage=\"sketch\",le=\"1\"} 1\n"));
        assert!(hv.contains("stage_micros_count{stage=\"sketch\"} 1\n"));
    }
}
