//! The violation baseline: grandfathered findings that do not fail CI.
//!
//! `lint-baseline.json` is committed at the workspace root. A finding whose
//! `(rule, path, line)` triple appears in the baseline is reported but does
//! not affect the exit code — so the gate only trips on *new* violations,
//! while the grandfathered list shrinks monotonically as debt is paid down.
//! `asm lint --write-baseline` regenerates the file (sorted, stable bytes).
//!
//! The format is ordinary JSON, but this crate is dependency-free, so both
//! the writer ([`write`]) and the reader ([`parse`]) are hand-rolled here;
//! the reader is a strict subset parser that accepts exactly what the writer
//! emits (plus whitespace), and errors loudly on anything else rather than
//! guessing.

use crate::rules::Finding;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub line: u32,
}

/// Serializes `findings` as the canonical baseline document: sorted entries,
/// two-space indent, trailing newline — byte-stable for a given finding set.
pub fn write(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = findings
        .iter()
        .map(|f| BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            line: f.line,
        })
        .collect();
    entries.sort();
    entries.dedup();
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}}}",
            json_string(&e.rule),
            json_string(&e.path),
            e.line
        ));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a baseline document. Returns entries in file order.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut entries = Vec::new();
    let mut first = true;
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        if !first {
            p.expect(b',')?;
            p.ws();
        }
        first = false;
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 {
                    return Err(format!("unsupported baseline version {v}"));
                }
            }
            "findings" => {
                p.expect(b'[')?;
                let mut first_entry = true;
                loop {
                    p.ws();
                    if p.eat(b']') {
                        break;
                    }
                    if !first_entry {
                        p.expect(b',')?;
                        p.ws();
                    }
                    first_entry = false;
                    entries.push(p.entry()?);
                }
            }
            other => return Err(format!("unknown baseline key {other:?}")),
        }
    }
    Ok(entries)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected {:?}, found {:?}",
                self.i,
                c as char,
                self.b.get(self.i).map(|&b| b as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .b
                        .get(self.i)
                        .copied()
                        .ok_or("baseline parse error: truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("baseline parse error: truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "baseline parse error: bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "baseline parse error: bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!(
                                "baseline parse error: unsupported escape \\{}",
                                other as char
                            ))
                        }
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences byte-for-byte.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let end = (start + len).min(self.b.len());
                    out.push_str(std::str::from_utf8(&self.b[start..end]).unwrap_or("\u{FFFD}"));
                    self.i = end;
                }
            }
        }
        Err("baseline parse error: unterminated string".into())
    }

    fn number(&mut self) -> Result<u32, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!(
                "baseline parse error at byte {start}: expected a number"
            ));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "baseline parse error: number out of range".to_string())
    }

    /// One `{"rule": …, "path": …, "line": …}` object, keys in any order.
    fn entry(&mut self) -> Result<BaselineEntry, String> {
        self.expect(b'{')?;
        let (mut rule, mut path, mut line) = (None, None, None);
        let mut first = true;
        loop {
            self.ws();
            if self.eat(b'}') {
                break;
            }
            if !first {
                self.expect(b',')?;
                self.ws();
            }
            first = false;
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "path" => path = Some(self.string()?),
                "line" => line = Some(self.number()?),
                other => return Err(format!("unknown baseline entry key {other:?}")),
            }
        }
        match (rule, path, line) {
            (Some(rule), Some(path), Some(line)) => Ok(BaselineEntry { rule, path, line }),
            _ => Err("baseline entry needs rule, path, and line".into()),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// Is `f` covered by `entries`?
pub fn contains(entries: &[BaselineEntry], f: &Finding) -> bool {
    entries
        .iter()
        .any(|e| e.rule == f.rule && e.path == f.path && e.line == f.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn write_parse_roundtrip() {
        let fs = vec![
            finding("no-wall-clock", "crates/core/src/asti.rs", 147),
            finding("checked-cast", "crates/graph/src/ops.rs", 36),
        ];
        let text = write(&fs);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(contains(&parsed, &fs[0]));
        assert!(contains(&parsed, &fs[1]));
        assert!(!contains(&parsed, &finding("no-wall-clock", "x.rs", 1)));
    }

    #[test]
    fn empty_baseline_roundtrip() {
        let text = write(&[]);
        assert_eq!(parse(&text).unwrap(), Vec::new());
    }

    #[test]
    fn writer_is_byte_stable_and_sorted() {
        let a = vec![finding("b-rule", "b.rs", 2), finding("a-rule", "a.rs", 9)];
        let b = vec![finding("a-rule", "a.rs", 9), finding("b-rule", "b.rs", 2)];
        assert_eq!(write(&a), write(&b));
        let text = write(&a);
        assert!(text.find("a.rs").unwrap() < text.find("b.rs").unwrap());
    }

    #[test]
    fn escapes_roundtrip() {
        let fs = vec![finding("safety-comment", "weird \"dir\"/a\\b.rs", 3)];
        let parsed = parse(&write(&fs)).unwrap();
        assert_eq!(parsed[0].path, "weird \"dir\"/a\\b.rs");
    }

    #[test]
    fn garbage_errors_loudly() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"version\": 2, \"findings\": []}").is_err());
        assert!(parse("{\"findings\": [{\"rule\": \"r\"}]}").is_err());
    }
}
