//! # smin-analyze
//!
//! The workspace determinism/robustness lint engine behind `asm lint`.
//!
//! The stack's headline guarantee — seed selections and `/v1/select` bodies
//! are bit-identical across thread counts and restarts — is easy to break
//! silently: one `HashMap` iteration, one wall-clock read, one `.unwrap()`
//! in the request path. This crate turns those informal invariants into a
//! machine-checked specification, in the spirit of industrial static
//! checkers: a small source-level pass that runs on every commit, with a
//! committed baseline so the gate only trips on *new* violations.
//!
//! Pipeline: [`lexer`] tokenizes each file (raw strings, nested comments,
//! char literals, `#[cfg(test)]` gating all handled), [`rules`] runs the
//! project-invariant checks with `// smin-lint: allow(<rule>) -- <why>`
//! escape hatches, [`workspace`] maps files to rule sets, [`baseline`]
//! grandfathers accepted findings, and [`report`] renders deterministic
//! human/JSON output. Dependency-free by design: the tool that gates every
//! crate builds with nothing but std.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use report::{Outcome, Reported};
pub use rules::{lint_source, Finding, RuleSet, RULE_IDS};

use std::path::Path;

/// Lints the tree at `root` and joins the result against `baseline_text`
/// (the contents of `lint-baseline.json`, if one applies).
///
/// Errors are I/O or baseline-syntax problems; findings — even new ones —
/// are *data*, not errors. Callers decide the exit code from
/// [`Outcome::new_count`].
pub fn run(root: &Path, baseline_text: Option<&str>) -> Result<Outcome, String> {
    let entries = match baseline_text {
        Some(text) => baseline::parse(text)?,
        None => Vec::new(),
    };
    let findings = workspace::lint_tree(root).map_err(|e| format!("{}: {e}", root.display()))?;
    let reported = findings
        .into_iter()
        .map(|finding| {
            let baselined = baseline::contains(&entries, &finding);
            Reported { finding, baselined }
        })
        .collect();
    Ok(Outcome { reported })
}
