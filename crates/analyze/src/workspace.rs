//! Workspace walking and per-file rule assignment.
//!
//! The mapping below *is* the project's determinism specification: which
//! crates promise bit-identical output (and therefore may not hash-iterate,
//! read clocks, or draw ambient entropy), and which modules form the service
//! request path (and therefore may not panic). Fixture trees and other
//! unknown layouts get every rule — strict by default.

use crate::rules::{lint_source, Finding, RuleSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose outputs are pinned bit-identical across thread counts and
/// restarts (PRs 2, 4, 5). `crates/graph` is included: generators feed the
/// deterministic pipeline even though the crate itself holds no RNG state.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/graph/",
    "crates/diffusion/",
    "crates/sampling/",
    "crates/core/",
    "crates/service/",
];

/// `smin-service` modules a request flows through; a panic here kills a
/// worker thread mid-connection — or, worse, the epoll poll thread that
/// owns every connection — so only structured errors are allowed. The
/// no-wall-clock rule also applies: the event loop keeps time exclusively
/// through its monotonic epoch (one justified in-source allow).
const REQUEST_PATH_FILES: &[&str] = &[
    "crates/service/src/http.rs",
    "crates/service/src/routes.rs",
    "crates/service/src/json.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/registry.rs",
    "crates/service/src/error.rs",
    "crates/service/src/server.rs",
    "crates/service/src/event_loop.rs",
    "crates/service/src/platform.rs",
    "crates/service/src/metrics.rs",
    "crates/service/src/trace.rs",
];

/// Files allowed to perform the narrowing the `checked-cast` rule forbids —
/// the checked helpers themselves.
const CHECKED_CAST_HELPERS: &[&str] = &["crates/graph/src/cast.rs"];

/// Decides which rules apply to `rel` (workspace-root-relative, `/`-separated).
/// `None` means the file is out of scope entirely.
pub fn rules_for(rel: &str) -> Option<RuleSet> {
    // Generated/vendored/third-party trees are not ours to lint.
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.contains("/target/") {
        return None;
    }
    // Integration tests, benches, and examples may unwrap, time, and index
    // freely — they are drivers, not product code. (In-crate `#[cfg(test)]`
    // modules are stripped token-wise instead; see rules::strip_test_gated.)
    for marker in ["tests/", "benches/", "examples/"] {
        if rel.starts_with(marker) || rel.contains(&format!("/{marker}")) {
            return None;
        }
    }

    if CHECKED_CAST_HELPERS.contains(&rel) {
        let mut r = RuleSet::deterministic();
        r.checked_cast = false;
        return Some(r);
    }
    if REQUEST_PATH_FILES.contains(&rel) {
        let mut r = RuleSet::deterministic();
        r.panic_in_request_path = true;
        return Some(r);
    }
    if DETERMINISTIC_CRATES.iter().any(|c| rel.starts_with(c)) {
        return Some(RuleSet::deterministic());
    }
    // The obs-timing scope: `smin-obs` is the one crate whose *job* is
    // reading the monotonic clock (spans, histograms) — its values travel
    // in headers, `/metrics`, and trace logs, never response bodies. Every
    // other deterministic rule still applies in full.
    if rel.starts_with("crates/obs/") {
        let mut r = RuleSet::deterministic();
        r.wall_clock = false;
        return Some(r);
    }
    // The facade crate re-exports the deterministic stack; hold it to the
    // same bar.
    if rel.starts_with("src/") {
        return Some(RuleSet::deterministic());
    }
    // The CLI and bench harness legitimately read clocks (they *measure*),
    // but must still seed RNGs explicitly and justify unsafe.
    if rel.starts_with("crates/cli/") || rel.starts_with("crates/bench/") {
        return Some(RuleSet {
            ambient_rng: true,
            safety_comment: true,
            ..RuleSet::default()
        });
    }
    // The linter lints itself: no hashing, no clocks, no entropy.
    if rel.starts_with("crates/analyze/") {
        let mut r = RuleSet::deterministic();
        r.checked_cast = false;
        return Some(r);
    }
    // Unknown layout (fixture trees, `--root` pointed elsewhere): everything.
    Some(RuleSet::all())
}

/// Recursively collects `.rs` files under `root`, sorted by relative path so
/// every downstream report is deterministic.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !matches!(name, ".git" | "target" | "vendor" | "node_modules") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every in-scope `.rs` file under `root`; findings are sorted by
/// (path, line, rule).
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(rules) = rules_for(&rel) else {
            continue;
        };
        if rules.is_empty() {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source, &rules));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_mapping_matches_the_spec() {
        assert!(rules_for("vendor/rand/src/lib.rs").is_none());
        assert!(rules_for("crates/service/tests/service_api.rs").is_none());
        assert!(rules_for("crates/bench/benches/trim_round.rs").is_none());
        assert!(rules_for("examples/quickstart.rs").is_none());

        let svc = rules_for("crates/service/src/routes.rs").unwrap();
        assert!(svc.panic_in_request_path && svc.hash_iteration);
        let el = rules_for("crates/service/src/event_loop.rs").unwrap();
        assert!(el.panic_in_request_path && el.wall_clock);
        let platform = rules_for("crates/service/src/platform.rs").unwrap();
        assert!(platform.panic_in_request_path && platform.wall_clock);
        let metrics = rules_for("crates/service/src/metrics.rs").unwrap();
        assert!(metrics.panic_in_request_path && metrics.wall_clock);
        let trace = rules_for("crates/service/src/trace.rs").unwrap();
        assert!(trace.panic_in_request_path && trace.wall_clock);
        let obs = rules_for("crates/obs/src/lib.rs").unwrap();
        assert!(
            !obs.wall_clock && obs.hash_iteration && obs.ambient_rng && !obs.panic_in_request_path,
            "obs-timing scope: clock reads allowed, everything else deterministic"
        );
        let core = rules_for("crates/core/src/trim.rs").unwrap();
        assert!(!core.panic_in_request_path && core.wall_clock && core.checked_cast);
        let helper = rules_for("crates/graph/src/cast.rs").unwrap();
        assert!(!helper.checked_cast && helper.hash_iteration);
        let cli = rules_for("crates/cli/src/commands.rs").unwrap();
        assert!(!cli.wall_clock && cli.ambient_rng);
        let unknown = rules_for("violations/panics.rs").unwrap();
        assert_eq!(unknown, RuleSet::all());
    }
}
