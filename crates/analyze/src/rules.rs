//! The rule engine: project-invariant checks over a lexed file.
//!
//! Each rule guards one of the stack's standing guarantees:
//!
//! | rule | invariant |
//! |---|---|
//! | `no-hash-iteration` | output-deterministic crates never touch `HashMap`/`HashSet` (iteration order is randomized) |
//! | `no-wall-clock` | `Instant::now`/`SystemTime::now` stay out of result-producing code |
//! | `no-ambient-rng` | RNGs are built from explicit seeds (counter-derived streams), never ambient entropy |
//! | `no-panic-in-request-path` | the service request path returns structured errors, never panics |
//! | `safety-comment` | every `unsafe` is justified by a `// SAFETY:` comment |
//! | `checked-cast` | no bare `as` narrowing onto the u32 node/set-id space outside checked helpers |
//!
//! Findings on a line annotated `// smin-lint: allow(<rule>) -- <why>` are
//! suppressed; the annotation covers its own line and the next line, and a
//! missing justification or unknown rule name is itself reported
//! (`malformed-allow`), so the escape hatch cannot rot silently.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Stable rule identifiers, in report order.
pub const RULE_IDS: &[&str] = &[
    "no-hash-iteration",
    "no-wall-clock",
    "no-ambient-rng",
    "no-panic-in-request-path",
    "safety-comment",
    "checked-cast",
];

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleSet {
    pub hash_iteration: bool,
    pub wall_clock: bool,
    pub ambient_rng: bool,
    pub panic_in_request_path: bool,
    pub safety_comment: bool,
    pub checked_cast: bool,
}

impl RuleSet {
    /// Every rule on — used for fixture/out-of-tree roots.
    pub fn all() -> RuleSet {
        RuleSet {
            hash_iteration: true,
            wall_clock: true,
            ambient_rng: true,
            panic_in_request_path: true,
            safety_comment: true,
            checked_cast: true,
        }
    }

    /// The baseline set for output-deterministic library crates.
    pub fn deterministic() -> RuleSet {
        RuleSet {
            hash_iteration: true,
            wall_clock: true,
            ambient_rng: true,
            panic_in_request_path: false,
            safety_comment: true,
            checked_cast: true,
        }
    }

    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// One finding, ordered by (path, line, rule) for deterministic reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Lints one file's source text under `rules`. `path` is only used to label
/// findings; callers decide the rule set per path.
pub fn lint_source(path: &str, source: &str, rules: &RuleSet) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = strip_test_gated(&lexed.toks);
    let allow = AllowTable::parse(&lexed.comments);

    let mut findings = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        if !allow.permits(rule, line) {
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            // Indexing check is punctuation-driven.
            if rules.panic_in_request_path
                && t.kind == TokKind::Punct
                && t.text == "["
                && is_index_bracket(&toks, i)
            {
                push(
                    "no-panic-in-request-path",
                    t.line,
                    "slice/array indexing can panic; use .get() and map the miss to a structured error".into(),
                );
            }
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if rules.hash_iteration => push(
                "no-hash-iteration",
                t.line,
                format!(
                    "{} iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            ),
            "Instant" | "SystemTime"
                if rules.wall_clock && path_is(&toks, i, &["now"]) =>
            {
                push(
                    "no-wall-clock",
                    t.line,
                    format!(
                        "{}::now() reads the wall clock; timing belongs in smin-bench or annotated header plumbing",
                        t.text
                    ),
                )
            }
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" | "ThreadRng"
                if rules.ambient_rng =>
            {
                push(
                    "no-ambient-rng",
                    t.line,
                    format!(
                        "`{}` draws ambient entropy; construct RNGs from explicit counter-derived seeds (seed_from_u64)",
                        t.text
                    ),
                )
            }
            "unwrap" | "expect"
                if rules.panic_in_request_path
                    && i > 0
                    && toks[i - 1].kind == TokKind::Punct
                    && toks[i - 1].text == "." =>
            {
                push(
                    "no-panic-in-request-path",
                    t.line,
                    format!(
                        ".{}() panics the worker thread on failure; return a structured ServiceError instead",
                        t.text
                    ),
                )
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if rules.panic_in_request_path
                    && toks.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                push(
                    "no-panic-in-request-path",
                    t.line,
                    format!("{}! aborts the worker thread; return a structured ServiceError instead", t.text),
                )
            }
            "unsafe" if rules.safety_comment && !has_safety_comment(&lexed.comments, t.line) => {
                push(
                    "safety-comment",
                    t.line,
                    "unsafe without a `// SAFETY:` comment in the preceding 3 lines".into(),
                );
            }
            "as" if rules.checked_cast => {
                if let Some(next) = toks.get(i + 1) {
                    if next.kind == TokKind::Ident
                        && matches!(next.text.as_str(), "u8" | "u16" | "u32")
                    {
                        push(
                            "checked-cast",
                            t.line,
                            format!(
                                "bare `as {}` narrowing can silently truncate an index; use smin_graph::cast::u32_of (or a checked try_into)",
                                next.text
                            ),
                        )
                    }
                }
            }
            _ => {}
        }
    }

    for bad in allow.malformed {
        findings.push(Finding {
            path: path.to_string(),
            line: bad.0,
            rule: "malformed-allow",
            message: bad.1,
        });
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// `Ident :: Ident…` — does the path continue from token `i` with exactly
/// `segments` (e.g. `Instant` followed by `::now`)?
fn path_is(toks: &[Tok], i: usize, segments: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in segments {
        if !(toks.get(j).is_some_and(|t| t.text == ":")
            && toks.get(j + 1).is_some_and(|t| t.text == ":")
            && toks
                .get(j + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == *seg))
        {
            return false;
        }
        j += 3;
    }
    true
}

/// Is the `[` at `toks[i]` an indexing expression? Heuristic: indexing
/// follows a value — an identifier, `)`, or `]`. Everything else (`#[attr]`,
/// `&[u8]`, `vec![…]`, `= [0; 4]`, `(&[…])`) follows punctuation.
fn is_index_bracket(toks: &[Tok], i: usize) -> bool {
    let Some(prev) = toks.get(i.wrapping_sub(1)) else {
        return false;
    };
    if i == 0 {
        return false;
    }
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            // keywords a `[` can legally follow without indexing
            "return" | "break" | "in" | "else" | "match" | "if" | "mut" | "dyn" | "as"
        ),
        TokKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    }
}

/// Is there a `SAFETY:` comment within the 3 lines above (or on) `line`?
fn has_safety_comment(comments: &[Comment], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.text.contains("SAFETY:") && c.line <= line && line - c.line <= 3)
}

/// Parsed `smin-lint: allow(…) -- why` annotations for one file.
struct AllowTable {
    /// (rule, line) pairs each annotation unlocks; an annotation on line L
    /// covers L and L+1 so it can trail the offending line or sit above it.
    entries: Vec<(String, u32)>,
    /// (line, message) for annotations that don't parse or name unknown
    /// rules — surfaced as `malformed-allow` findings.
    malformed: Vec<(u32, String)>,
}

impl AllowTable {
    fn parse(comments: &[Comment]) -> AllowTable {
        let mut entries = Vec::new();
        let mut malformed = Vec::new();
        for c in comments {
            // An annotation *starts* the comment body (`// smin-lint: …`,
            // `/* smin-lint: … */`). Prose that merely quotes the syntax —
            // docs, help text — is not an annotation.
            let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
            let Some(rest) = body.strip_prefix("smin-lint:") else {
                continue;
            };
            let rest = rest.trim_start();
            let parsed = (|| -> Result<Vec<String>, String> {
                let body = rest
                    .strip_prefix("allow(")
                    .ok_or("expected `smin-lint: allow(<rule>) -- <justification>`")?;
                let close = body.find(')').ok_or("missing `)` after rule list")?;
                let (list, tail) = (body[..close].to_string(), &body[close + 1..]);
                if !tail.trim_start().starts_with("--")
                    || tail.trim_start().trim_start_matches('-').trim().is_empty()
                {
                    return Err(
                        "allow annotations need a justification: `-- <why this is sound>`".into(),
                    );
                }
                let mut rules = Vec::new();
                for rule in list.split(',') {
                    let rule = rule.trim();
                    if !RULE_IDS.contains(&rule) {
                        return Err(format!("unknown rule '{rule}' in allow annotation"));
                    }
                    rules.push(rule.to_string());
                }
                if rules.is_empty() {
                    return Err("empty rule list in allow annotation".into());
                }
                Ok(rules)
            })();
            match parsed {
                Ok(rules) => {
                    for rule in rules {
                        entries.push((rule, c.line));
                    }
                }
                Err(msg) => malformed.push((c.line, msg)),
            }
        }
        AllowTable { entries, malformed }
    }

    fn permits(&self, rule: &str, line: u32) -> bool {
        self.entries
            .iter()
            .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }
}

/// Removes token ranges gated behind `#[cfg(test)]` (and `#[cfg(all(test,…))]`
/// etc.) — test modules may unwrap freely. `#[cfg_attr(test, …)]` does *not*
/// gate compilation and is left in. Inner attributes `#![…]` are skipped
/// without gating.
fn strip_test_gated(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct && t.text == "#" {
            // inner attribute `#![…]`: copy through
            let bang = toks.get(i + 1).is_some_and(|t| t.text == "!");
            let open = if bang { i + 2 } else { i + 1 };
            if toks.get(open).is_some_and(|t| t.text == "[") {
                let close = matching_bracket(toks, open);
                if close <= open {
                    // unbalanced trailing attribute: keep the rest verbatim
                    out.extend_from_slice(&toks[i..]);
                    break;
                }
                let gated = !bang && attr_is_cfg_test(&toks[open + 1..close]);
                if gated {
                    // Skip this attribute, any further attributes, and the
                    // item's braced body (or up to `;` for braceless items).
                    i = skip_gated_item(toks, close + 1);
                    continue;
                }
                // Non-gating attribute: keep tokens (rules ignore them).
                out.extend_from_slice(&toks[i..=close.min(toks.len() - 1)]);
                i = close + 1;
                continue;
            }
        }
        out.push(t.clone());
        i += 1;
    }
    out
}

/// Index of the `]` closing the `[` at `open` (depth-aware); saturates at the
/// last token for unbalanced input.
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Does the attribute body start with `cfg` and mention `test` (not
/// `cfg_attr`, whose test arm still compiles into non-test builds)?
fn attr_is_cfg_test(body: &[Tok]) -> bool {
    body.first()
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "cfg")
        && body
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test")
}

/// Starting just after a gating attribute, returns the index past the whole
/// item: further attributes, the signature, and the `{…}` body (or `;`).
fn skip_gated_item(toks: &[Tok], mut i: usize) -> usize {
    // further outer attributes
    while toks.get(i).is_some_and(|t| t.text == "#")
        && toks.get(i + 1).is_some_and(|t| t.text == "[")
    {
        i = matching_bracket(toks, i + 1) + 1;
    }
    // scan to the first top-level `{` or `;`
    let mut depth = 0i64; // () and [] nesting inside the signature
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => return i + 1,
                "{" if depth == 0 => {
                    // skip the balanced braces
                    let mut braces = 0i64;
                    while i < toks.len() {
                        let t = &toks[i];
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "{" => braces += 1,
                                "}" => {
                                    braces -= 1;
                                    if braces == 0 {
                                        return i + 1;
                                    }
                                }
                                _ => {}
                            }
                        }
                        i += 1;
                    }
                    return i;
                }
                _ => {}
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        lint_source("x.rs", src, &RuleSet::all())
    }

    #[test]
    fn hash_map_in_code_fires_in_strings_does_not() {
        let f = run("use std::collections::HashMap;\nlet s = \"HashMap\";");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-hash-iteration");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cfg_attr_test_is_not_exempt() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn f() { x.unwrap(); }\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic-in-request-path");
    }

    #[test]
    fn allow_annotation_suppresses_same_and_next_line() {
        let src =
            "// smin-lint: allow(no-wall-clock) -- header timing only\nlet t = Instant::now();\n";
        assert!(run(src).is_empty());
        let trailing =
            "let t = Instant::now(); // smin-lint: allow(no-wall-clock) -- header timing\n";
        assert!(run(trailing).is_empty());
    }

    #[test]
    fn allow_without_justification_is_malformed() {
        let src = "// smin-lint: allow(no-wall-clock)\nlet t = Instant::now();\n";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "malformed-allow"));
        assert!(f.iter().any(|x| x.rule == "no-wall-clock"));
    }

    #[test]
    fn unknown_rule_in_allow_is_malformed() {
        let src = "// smin-lint: allow(no-such-rule) -- because\nfn f() {}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "malformed-allow");
    }

    #[test]
    fn indexing_fires_but_types_and_macros_do_not() {
        let f = run("fn f(b: &[u8], v: Vec<u8>) -> u8 { let a = [0u8; 4]; v[0] }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("indexing"));
        assert!(run("fn f() { let v = vec![1, 2]; }\n").is_empty());
        assert!(run("#[derive(Debug)]\nstruct S;\n").is_empty());
    }

    #[test]
    fn safety_comment_satisfies_unsafe() {
        let bad = "fn f() { unsafe { g() } }\n";
        let f = run(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        let good = "fn f() {\n  // SAFETY: g is sound here\n  unsafe { g() }\n}\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn narrowing_casts_fire_widening_do_not() {
        let f = run("fn f(n: usize) { let x = n as u32; let y = 3u32 as usize; }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "checked-cast");
    }

    #[test]
    fn wall_clock_needs_the_now_call() {
        assert!(run("use std::time::Instant;\n").is_empty());
        let f = run("let t = std::time::Instant::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-wall-clock");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        assert!(run("fn f() { m.lock().unwrap_or_else(|e| e.into_inner()); }\n").is_empty());
        let f = run("fn f() { m.lock().unwrap(); }\n");
        assert_eq!(f.len(), 1);
    }
}
