//! A small, correct-enough Rust lexer.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) plus a
//! separate comment list, each tagged with its 1-based source line. The rules
//! in [`crate::rules`] only ever inspect identifiers, punctuation, and
//! comments — so the lexer's one job is to *never* misread the inside of a
//! string, character literal, or comment as code. It therefore handles the
//! full set of Rust constructs that embed arbitrary text:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments
//!   (`/* /* */ */`, including doc-block forms);
//! * string literals with escapes, byte strings (`b"…"`);
//! * raw strings with any hash count (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * character and byte literals — including `'"'`, `'\''`, `'\u{1F600}'`,
//!   `'//'`-lookalikes — disambiguated from lifetimes (`'a`, `'static`);
//! * raw identifiers (`r#fn`);
//! * shebang lines (`#!/usr/bin/env …` skipped, `#![attr]` not);
//! * numeric literals with suffixes (`0u8`, `1_000`, `0xFF`, `2.5e-3`) so a
//!   range like `0..n` never lexes `.` into a float.

/// What a token is; rules mostly match on `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `as`, `HashMap`, …). Raw
    /// identifiers are unescaped: `r#fn` lexes as `Ident("fn")`.
    Ident,
    /// A single punctuation byte (`.`, `[`, `!`, `:`…).
    Punct,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Character or byte literal: `'x'`, `b'x'`.
    Char,
    /// Lifetime or loop label: `'a`, `'static`.
    Lifetime,
    /// Numeric literal including its suffix: `42usize`, `0xFF`, `1.5`.
    Num,
}

/// One token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block) with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexed file: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src`. Unrecognizable bytes become one-byte `Punct` tokens; the
/// lexer never fails, so a half-written file still gets best-effort findings.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        // A shebang is only a shebang when `#!` opens the file and is not
        // the start of an inner attribute `#![…]`.
        if self.b.starts_with(b"#!") && self.b.get(2) != Some(&b'[') {
            while self.i < self.b.len() && self.b[self.i] != b'\n' {
                self.i += 1;
            }
        }
        while self.i < self.b.len() {
            let b = self.b[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if b.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' => self.r_or_b(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                _ => {
                    self.push(TokKind::Punct, self.line, &[b]);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, line: u32, text: &[u8]) {
        self.out.toks.push(Tok {
            kind,
            text: String::from_utf8_lossy(text).into_owned(),
            line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
            line: self.line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match (self.b[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
            line: start_line,
        });
    }

    /// `r` / `b` starts: raw strings `r"…"` `r#"…"#`, byte strings `b"…"`,
    /// raw byte strings `br#"…"#`, byte chars `b'x'`, raw identifiers
    /// `r#ident` — or a plain identifier that merely begins with r/b.
    fn r_or_b(&mut self) {
        let line = self.line;
        let mut j = self.i + 1;
        let mut has_r = self.b[self.i] == b'r';
        if self.b[self.i] == b'b' && self.b.get(j) == Some(&b'r') {
            has_r = true;
            j += 1;
        }
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        match self.b.get(j) {
            // `b"…"` is an *escaped* string; only an r-prefix makes it raw.
            Some(&b'"') if !has_r => {
                self.i = j;
                self.string();
            }
            Some(&b'"') => {
                self.raw_string(j + 1, hashes, line);
            }
            Some(&c) if hashes == 1 && self.b[self.i] == b'r' && is_ident_start(c) => {
                // raw identifier r#foo: emit `foo`
                let start = j;
                let mut k = j;
                while self.b.get(k).copied().is_some_and(is_ident_continue) {
                    k += 1;
                }
                let text = self.b[start..k].to_vec();
                self.push(TokKind::Ident, line, &text);
                self.i = k;
            }
            Some(&b'\'') if hashes == 0 && self.b[self.i] == b'b' && self.i + 1 == j => {
                // byte literal b'x'
                self.i += 1; // leave the quote handler to consume '…'
                self.quote();
                if let Some(last) = self.out.toks.last_mut() {
                    last.kind = TokKind::Char;
                }
            }
            _ if hashes == 0 => self.ident(),
            _ => {
                // `r#` / `b#` followed by nothing lexable: treat as idents
                // plus puncts so we always make progress.
                self.ident();
            }
        }
    }

    /// Body of a raw string: `start` points just past the opening quote.
    fn raw_string(&mut self, start: usize, hashes: usize, line: u32) {
        let mut k = start;
        'scan: while k < self.b.len() {
            if self.b[k] == b'\n' {
                self.line += 1;
                k += 1;
                continue;
            }
            if self.b[k] == b'"' {
                let mut h = 0usize;
                while h < hashes && self.b.get(k + 1 + h) == Some(&b'#') {
                    h += 1;
                }
                if h == hashes {
                    k += 1 + hashes;
                    break 'scan;
                }
            }
            k += 1;
        }
        let text = self.b[self.i..k.min(self.b.len())].to_vec();
        self.push(TokKind::Str, line, &text);
        self.i = k;
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = self.b[start..self.i].to_vec();
        self.push(TokKind::Ident, self.line, &text);
    }

    fn number(&mut self) {
        let start = self.i;
        // Integer part, hex/oct/bin digits, `_` separators, and type
        // suffixes are all alphanumeric-or-underscore.
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        // Fraction: take `.` only when a digit follows, so `0..n` keeps its
        // range dots as punctuation.
        if self.b.get(self.i) == Some(&b'.')
            && self
                .b
                .get(self.i + 1)
                .copied()
                .is_some_and(|c| c.is_ascii_digit())
        {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
        }
        let text = self.b[start..self.i].to_vec();
        self.push(TokKind::Num, self.line, &text);
    }

    fn string(&mut self) {
        let start = self.i;
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let text = self.b[start..self.i.min(self.b.len())].to_vec();
        self.push(TokKind::Str, line, &text);
    }

    /// `'…` — lifetime, loop label, or character literal.
    fn quote(&mut self) {
        let start = self.i;
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if is_ident_start(c) => after == Some(b'\''), // 'a' vs 'a
            Some(_) => true, // '"', '/', '0', multi-byte UTF-8, …
            None => false,
        };
        if !is_char {
            // lifetime or label: consume `'ident`
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            let text = self.b[start..self.i].to_vec();
            self.push(TokKind::Lifetime, line, &text);
            return;
        }
        self.i += 1; // past the opening quote
        if self.b.get(self.i) == Some(&b'\\') {
            self.i += 2; // backslash + escape head ('n', '\'', 'u', 'x', …)
            if self.b.get(self.i - 1) == Some(&b'u') && self.b.get(self.i) == Some(&b'{') {
                while self.i < self.b.len() && self.b[self.i] != b'}' {
                    self.i += 1;
                }
                self.i += 1;
            } else if self.b.get(self.i - 1) == Some(&b'x') {
                self.i += 2;
            }
        } else {
            // one character, possibly multi-byte UTF-8
            self.i += 1;
            while self
                .b
                .get(self.i)
                .copied()
                .is_some_and(|c| c & 0b1100_0000 == 0b1000_0000)
            {
                self.i += 1;
            }
        }
        if self.b.get(self.i) == Some(&b'\'') {
            self.i += 1;
        }
        let text = self.b[start..self.i.min(self.b.len())].to_vec();
        self.push(TokKind::Char, line, &text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let x = "HashMap::new() // not code"; y"#);
        let ids = idents(r#"let x = "HashMap::new() // not code"; y"#);
        assert_eq!(ids, vec!["let", "x", "y"]);
        assert_eq!(l.comments.len(), 0);
    }

    #[test]
    fn char_vs_lifetime() {
        let ids = idents("fn f<'a>(x: &'a str) { let q = '\"'; let s = 'x'; }");
        assert!(ids.contains(&"str".to_string()));
        let l = lex("let q = '\"'; // after");
        assert_eq!(l.comments.len(), 1, "the '\\\"' char must not eat the //");
    }

    #[test]
    fn line_numbers_advance_through_multiline_strings() {
        let l = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
