//! Deterministic human and JSON rendering of a lint run.
//!
//! Both formats are pure functions of the (already sorted) finding list, so
//! two runs over the same tree produce byte-identical output — pinned in CI
//! by diffing consecutive `--format json` reports.

use crate::baseline::json_string;
use crate::rules::Finding;

/// A finding joined with its baseline status.
#[derive(Debug, Clone)]
pub struct Reported {
    pub finding: Finding,
    pub baselined: bool,
}

/// Aggregate outcome of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    pub reported: Vec<Reported>,
}

impl Outcome {
    pub fn total(&self) -> usize {
        self.reported.len()
    }

    pub fn new_count(&self) -> usize {
        self.reported.iter().filter(|r| !r.baselined).count()
    }

    pub fn baselined_count(&self) -> usize {
        self.reported.iter().filter(|r| r.baselined).count()
    }

    /// `path:line: [rule] message` lines plus a summary tail.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for r in &self.reported {
            let f = &r.finding;
            out.push_str(&format!(
                "{}:{}: [{}] {}{}\n",
                f.path,
                f.line,
                f.rule,
                f.message,
                if r.baselined { " (baselined)" } else { "" }
            ));
        }
        let files: std::collections::BTreeSet<&str> = self
            .reported
            .iter()
            .map(|r| r.finding.path.as_str())
            .collect();
        out.push_str(&format!(
            "asm lint: {} finding(s) ({} new, {} baselined) in {} file(s)\n",
            self.total(),
            self.new_count(),
            self.baselined_count(),
            files.len()
        ));
        out
    }

    /// The machine-readable report (stable key order, sorted findings, no
    /// timestamps or absolute paths — byte-identical across runs and hosts).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"smin-analyze\",\n  \"version\": 1,\n");
        out.push_str(&format!(
            "  \"total\": {},\n  \"new\": {},\n  \"baselined\": {},\n",
            self.total(),
            self.new_count(),
            self.baselined_count()
        ));
        out.push_str("  \"findings\": [");
        for (i, r) in self.reported.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let f = &r.finding;
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"baselined\": {}}}",
                json_string(f.rule),
                json_string(&f.path),
                f.line,
                json_string(&f.message),
                r.baselined
            ));
        }
        if !self.reported.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        Outcome {
            reported: vec![
                Reported {
                    finding: Finding {
                        rule: "no-wall-clock",
                        path: "a.rs".into(),
                        line: 3,
                        message: "clock".into(),
                    },
                    baselined: true,
                },
                Reported {
                    finding: Finding {
                        rule: "checked-cast",
                        path: "b.rs".into(),
                        line: 9,
                        message: "cast".into(),
                    },
                    baselined: false,
                },
            ],
        }
    }

    #[test]
    fn counts_and_human_format() {
        let o = outcome();
        assert_eq!((o.total(), o.new_count(), o.baselined_count()), (2, 1, 1));
        let h = o.human();
        assert!(h.contains("a.rs:3: [no-wall-clock] clock (baselined)"));
        assert!(h.contains("b.rs:9: [checked-cast] cast\n"));
        assert!(h.contains("2 finding(s) (1 new, 1 baselined) in 2 file(s)"));
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let o = outcome();
        assert_eq!(o.json(), o.json());
        assert!(o.json().contains("\"new\": 1"));
        let empty = Outcome::default();
        assert!(empty.json().contains("\"findings\": []"));
    }
}
