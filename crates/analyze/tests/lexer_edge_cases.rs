//! Lexer edge cases: the constructs that break naive regex-based linters
//! and that `asm lint` must get right — raw strings, nested comments,
//! comment-lookalike literals, shebangs, and cfg gating.

use smin_analyze::lexer::{lex, TokKind};
use smin_analyze::rules::{lint_source, RuleSet};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .toks
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_string_with_hashes_swallows_quotes_and_slashes() {
    let src = r####"let s = r##"contains " quote, // slashes, /* and this */"##;"####;
    let lexed = lex(src);
    assert!(lexed.comments.is_empty(), "raw string is not a comment");
    let strs: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("// slashes"));
}

#[test]
fn raw_string_hash_count_must_match() {
    // `"#` inside the literal does not close an `r##"…"##` string.
    let src = r#####"let s = r###"inner "# and "## stay inside"###; let t = 1;"#####;
    let lexed = lex(src);
    assert_eq!(
        lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
        1
    );
    assert!(
        idents(src).contains(&"t".to_string()),
        "lexer resynced after the raw string"
    );
}

#[test]
fn nested_block_comments_close_at_depth_zero() {
    let src = "/* outer /* inner */ still outer */ let live = 1;";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("still outer"));
    assert_eq!(idents(src), vec!["let", "live"]);
}

#[test]
fn char_literal_with_quote_and_string_with_slashes() {
    let src = r#"let c = '"'; let s = "// HashMap::new() is just text"; let b = b"\"";"#;
    let lexed = lex(src);
    assert!(lexed.comments.is_empty());
    assert_eq!(
        lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count(),
        1
    );
    // The HashMap mention sits inside a string: no rule may fire.
    let findings = lint_source("fixture.rs", src, &RuleSet::all());
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn escaped_char_literals_and_lifetimes_disambiguate() {
    let src = "fn f<'a>(x: &'a str) -> char { let q = '\\''; let bs = '\\\\'; q }";
    let lexed = lex(src);
    let lifetimes: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    assert_eq!(
        lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count(),
        2
    );
}

#[test]
fn shebang_is_skipped_but_inner_attr_is_not() {
    let src = "#!/usr/bin/env run-cargo-script\nfn main() { let x = 1; }";
    assert_eq!(idents(src), vec!["fn", "main", "let", "x"]);

    // `#![…]` is an inner attribute, not a shebang: its tokens survive.
    let attr = "#![forbid(unsafe_code)]\nfn main() {}";
    assert!(idents(attr).contains(&"forbid".to_string()));
}

#[test]
fn doc_comments_are_captured_with_lines() {
    let src = "//! module docs\n\n/// item docs\nfn f() {}\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert_eq!(lexed.comments[0].line, 1);
    assert_eq!(lexed.comments[1].line, 3);
}

#[test]
fn cfg_test_gates_but_cfg_attr_does_not() {
    let gated = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert!(
        lint_source("fixture.rs", gated, &RuleSet::all()).is_empty(),
        "cfg(test) code is exempt"
    );

    let cfg_attr = "#[cfg_attr(test, allow(dead_code))]\nfn f() { let m = std::collections::HashMap::<u32, u32>::new(); let _ = m; }\n";
    let findings = lint_source("fixture.rs", cfg_attr, &RuleSet::all());
    assert!(
        findings.iter().any(|f| f.rule == "no-hash-iteration"),
        "cfg_attr does not remove the item from non-test builds; findings: {findings:?}"
    );
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "let a = \"line\n1 to\n3\";\nstd::time::Instant::now();\n";
    let findings = lint_source("fixture.rs", src, &RuleSet::all());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "no-wall-clock");
    assert_eq!(findings[0].line, 4);
}
