//! Fixture: `no-wall-clock` must fire on `Instant::now` and
//! `SystemTime::now`, but not on a mere mention of the types.

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let a = Instant::now();
    let b = SystemTime::now();
    (a, b)
}

pub fn quiet(t: Instant) -> Instant {
    t
}
