//! Fixture: `checked-cast` must fire on bare narrowing `as` casts.

pub fn ids(n: usize) -> (u32, u16, u8) {
    (n as u32, n as u16, n as u8)
}
