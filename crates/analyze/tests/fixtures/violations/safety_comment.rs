//! Fixture: the safety-comment rule must fire on unjustified `unsafe`.

pub fn peek(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}
