//! Fixture: `no-hash-iteration` must fire on both the import and the use.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    let map: HashMap<u32, u32> = HashMap::new();
    seen.len() + map.len()
}
