//! Fixture: `no-ambient-rng` must fire on entropy-seeded generators.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let other = rand::rngs::SmallRng::from_entropy();
    let _ = other;
    rng.next_u64()
}
