//! Fixture: `no-panic-in-request-path` must fire on unwrap/expect,
//! panicking macros, and bare slice indexing.

pub fn handle(body: &[u8], table: &[u32]) -> u32 {
    let parsed: Result<u32, ()> = Ok(7);
    let a = parsed.unwrap();
    let b = std::str::from_utf8(body).expect("utf8");
    if b.is_empty() {
        panic!("empty body");
    }
    table[a as usize]
}
