//! Fixture: a module every rule should stay quiet on — ordered
//! collections, checked conversions, justified unsafe, annotated
//! suppressions, and comment-lookalike literals that must not confuse
//! the lexer.

use std::collections::BTreeMap;

pub fn widen(x: u8) -> u64 {
    // Widening casts are always fine.
    x as u64
}

pub fn narrow(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

pub fn lookup(map: &BTreeMap<String, u32>, k: &str) -> Option<u32> {
    map.get(k).copied()
}

pub fn justified(xs: &[u8]) -> u8 {
    // SAFETY: callers guarantee xs is non-empty (checked in lookup()).
    unsafe { *xs.get_unchecked(0) }
}

pub fn suppressed(n: usize) -> u32 {
    // smin-lint: allow(checked-cast) -- n is a loop counter bounded by 10 above
    n as u32
}

pub fn tricky_literals() -> (&'static str, char, &'static str) {
    let not_a_comment = "// HashMap::new() inside a string";
    let quote = '"';
    let raw = r##"raw with " quote and /* fake comment */ and // slashes"##;
    (not_a_comment, quote, raw)
}
