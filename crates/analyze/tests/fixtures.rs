//! End-to-end rule checks against the committed fixture files: every rule
//! fires on its seeded violation file and stays quiet on the clean module.

use smin_analyze::rules::{lint_source, RuleSet};

fn rules_fired(name: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<_> = lint_source(name, src, &RuleSet::all())
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn hash_iteration_fixture_fires() {
    let src = include_str!("fixtures/violations/hash_iteration.rs");
    assert_eq!(
        rules_fired("hash_iteration.rs", src),
        vec!["no-hash-iteration"]
    );
}

#[test]
fn wall_clock_fixture_fires() {
    let src = include_str!("fixtures/violations/wall_clock.rs");
    let fired = rules_fired("wall_clock.rs", src);
    assert_eq!(fired, vec!["no-wall-clock"]);
    // Both ::now sites, not the bare type mentions.
    let findings = lint_source("wall_clock.rs", src, &RuleSet::all());
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn ambient_rng_fixture_fires() {
    let src = include_str!("fixtures/violations/ambient_rng.rs");
    assert_eq!(rules_fired("ambient_rng.rs", src), vec!["no-ambient-rng"]);
}

#[test]
fn panic_fixture_fires_on_all_four_shapes() {
    let src = include_str!("fixtures/violations/panic_request_path.rs");
    assert_eq!(
        rules_fired("panic_request_path.rs", src),
        vec!["no-panic-in-request-path"]
    );
    let findings = lint_source("panic_request_path.rs", src, &RuleSet::all());
    // unwrap, expect, panic!, and the bare index.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn safety_comment_fixture_fires() {
    let src = include_str!("fixtures/violations/safety_comment.rs");
    assert_eq!(
        rules_fired("safety_comment.rs", src),
        vec!["safety-comment"]
    );
}

#[test]
fn checked_cast_fixture_fires_per_width() {
    let src = include_str!("fixtures/violations/checked_cast.rs");
    assert_eq!(rules_fired("checked_cast.rs", src), vec!["checked-cast"]);
    let findings = lint_source("checked_cast.rs", src, &RuleSet::all());
    assert_eq!(
        findings.len(),
        3,
        "u32, u16, and u8 each flagged: {findings:?}"
    );
}

#[test]
fn clean_fixture_is_quiet_under_every_rule() {
    let src = include_str!("fixtures/clean/clean_module.rs");
    let findings = lint_source("clean_module.rs", src, &RuleSet::all());
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
}

#[test]
fn deterministic_ruleset_skips_request_path_rule() {
    let src = include_str!("fixtures/violations/panic_request_path.rs");
    let findings = lint_source("panic_request_path.rs", src, &RuleSet::deterministic());
    assert!(findings.is_empty(), "{findings:?}");
}
